"""Bug-injection mutation engine (paper §V "Bug injection").

Implements the paper's three data-centric mutation classes:

* **Negation** — insert a wrong ``~`` in front of an operand, or remove
  an existing one;
* **Variable misuse** — replace an operand identifier with another
  declared signal, preferring syntactically similar names (replicating
  copy-paste errors);
* **Operation substitution** — replace a Boolean/arithmetic operator
  with a different one from the same arity group (e.g. ``|`` -> ``&``).

One bug per mutated design (no masking interplay).  Mutants that would
create a combinational cycle (possible with variable misuse) are rejected
at enumeration time via a conservative static cycle check.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

import networkx as nx

from ..verilog.ast_nodes import (
    BinaryOp,
    Identifier,
    Module,
    Node,
    Statement,
    UnaryOp,
)
from ..verilog.printer import statement_source

#: Operator substitution groups: any operator may be replaced by another
#: member of its group.
SUBSTITUTION_GROUPS: tuple[tuple[str, ...], ...] = (
    ("&", "|", "^"),
    ("&&", "||"),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("+", "-"),
    ("<<", ">>"),
)

_GROUP_OF: dict[str, tuple[str, ...]] = {
    op: group for group in SUBSTITUTION_GROUPS for op in group
}


@dataclass(frozen=True)
class Mutation:
    """A single planned mutation.

    Attributes:
        kind: "negation", "misuse", or "operation".
        stmt_id: Statement the mutation applies to.
        node_index: Index of the mutated node in the statement RHS
            pre-order walk (stable across clones).
        detail: Human-readable description of the change.
        replacement: For misuse: the new identifier name.  For operation:
            the new operator.  For negation: "insert" or "remove".
    """

    kind: str
    stmt_id: int
    node_index: int
    detail: str
    replacement: str


def _rhs_nodes(stmt: Statement) -> list[Node]:
    """Pre-order nodes of a statement's RHS (index space for mutations)."""
    return list(stmt.rhs.walk())


def _similar_names(name: str, candidates: list[str], limit: int = 5) -> list[str]:
    """Candidates ordered by syntactic similarity to ``name``."""
    scored = sorted(
        candidates,
        key=lambda c: difflib.SequenceMatcher(None, name, c).ratio(),
        reverse=True,
    )
    return scored[:limit]


def enumerate_mutations(
    module: Module,
    kinds: tuple[str, ...] = ("negation", "operation", "misuse"),
    misuse_candidates_per_site: int = 2,
    min_operands: int = 0,
) -> list[Mutation]:
    """Enumerate every applicable mutation site in a design.

    Args:
        module: The golden design.
        kinds: Which mutation classes to enumerate.
        misuse_candidates_per_site: How many similar-name replacements to
            emit per identifier site.
        min_operands: Only mutate statements whose RHS references at
            least this many operand instances.  The paper's campaign
            targets *data-centric* bugs; single-operand statements have
            a degenerate attention vector ([1.0]) that carries no
            localization signal, so data-flow campaigns use
            ``min_operands=2``.

    Returns:
        All mutations, statement order then node order.
    """
    mutations: list[Mutation] = []
    signal_names = list(module.decls)
    for stmt in module.statements():
        nodes = _rhs_nodes(stmt)
        n_operands = sum(1 for n in nodes if isinstance(n, Identifier))
        if n_operands < min_operands:
            continue
        source = statement_source(stmt)
        for index, node in enumerate(nodes):
            if "negation" in kinds:
                mutations.extend(_negation_mutations(stmt, index, node, source))
            if "operation" in kinds and isinstance(node, BinaryOp):
                group = _GROUP_OF.get(node.op, ())
                for new_op in group:
                    if new_op != node.op:
                        mutations.append(
                            Mutation(
                                kind="operation",
                                stmt_id=stmt.stmt_id,
                                node_index=index,
                                detail=f"{source}: {node.op!r} -> {new_op!r}",
                                replacement=new_op,
                            )
                        )
            if "misuse" in kinds and isinstance(node, Identifier):
                if node.name not in module.decls:
                    continue  # parameters are not misuse targets
                width = module.decls[node.name].width
                candidates = [
                    c
                    for c in signal_names
                    if c != node.name
                    and c != stmt.target.name
                    and module.decls[c].width == width
                ]
                for candidate in _similar_names(
                    node.name, candidates, misuse_candidates_per_site
                ):
                    mutations.append(
                        Mutation(
                            kind="misuse",
                            stmt_id=stmt.stmt_id,
                            node_index=index,
                            detail=f"{source}: {node.name} -> {candidate}",
                            replacement=candidate,
                        )
                    )
    return mutations


def _negation_mutations(
    stmt: Statement, index: int, node: Node, source: str
) -> list[Mutation]:
    out: list[Mutation] = []
    if isinstance(node, UnaryOp) and node.op == "~":
        out.append(
            Mutation(
                kind="negation",
                stmt_id=stmt.stmt_id,
                node_index=index,
                detail=f"{source}: remove ~ before {type(node.operand).__name__}",
                replacement="remove",
            )
        )
    elif isinstance(node, Identifier):
        out.append(
            Mutation(
                kind="negation",
                stmt_id=stmt.stmt_id,
                node_index=index,
                detail=f"{source}: insert ~ before {node.name}",
                replacement="insert",
            )
        )
    return out


def apply_mutation(module: Module, mutation: Mutation) -> Module:
    """Apply a mutation to a deep copy of the design.

    Returns:
        The mutated module (the input module is never modified).

    Raises:
        ValueError: If the mutation site cannot be located or the mutation
            cannot be applied there.
    """
    mutant: Module = module.clone()  # type: ignore[assignment]
    stmt = mutant.statement_by_id(mutation.stmt_id)
    nodes = _rhs_nodes(stmt)
    if mutation.node_index >= len(nodes):
        raise ValueError(f"node index {mutation.node_index} out of range")
    target_node = nodes[mutation.node_index]

    if mutation.kind == "negation":
        _apply_negation(stmt, target_node, mutation)
    elif mutation.kind == "operation":
        if not isinstance(target_node, BinaryOp):
            raise ValueError("operation mutation site is not a binary operator")
        target_node.op = mutation.replacement
    elif mutation.kind == "misuse":
        if not isinstance(target_node, Identifier):
            raise ValueError("misuse mutation site is not an identifier")
        target_node.name = mutation.replacement
    else:
        raise ValueError(f"unknown mutation kind {mutation.kind!r}")
    return mutant


def _apply_negation(stmt: Statement, node: Node, mutation: Mutation) -> None:
    if mutation.replacement == "remove":
        if not (isinstance(node, UnaryOp) and node.op == "~"):
            raise ValueError("negation-remove site is not a ~ operator")
        _replace_child(stmt, node, node.operand)
    else:
        if not isinstance(node, Identifier):
            raise ValueError("negation-insert site is not an identifier")
        wrapper = UnaryOp(op="~", operand=node, line=node.line, col=node.col)
        _replace_child(stmt, node, wrapper)


def _replace_child(stmt: Statement, old: Node, new: Node) -> None:
    """Replace ``old`` with ``new`` anywhere in the statement RHS."""
    if stmt.rhs is old:
        stmt.rhs = new
        return
    for parent in stmt.rhs.walk():
        for attr, value in vars(parent).items():
            if value is old:
                setattr(parent, attr, new)
                return
            if isinstance(value, list):
                for i, element in enumerate(value):
                    if element is old:
                        value[i] = new
                        return
    raise ValueError("mutation site not found in statement")


def creates_combinational_cycle(module: Module) -> bool:
    """Check whether a design's combinational logic could oscillate.

    The simulator evaluates combinational processes in order and iterates
    to a fixpoint, so a read is only a *cross-pass* dependence when the
    variable is combinationally driven and has not yet been assigned
    unconditionally earlier in the same pass of the same process (ordered
    blocking-assignment semantics).  A cycle among cross-pass dependences
    means the fixpoint may not exist; we reject such mutants, matching
    real simulators rejecting oscillating netlists.

    The dependence structure is built by the lint layer's
    :func:`repro.lint.comb_feedback`; the ``cycle.comb`` lint rule and
    this rejection check share one analysis by construction.
    """
    from ..lint.cycles import comb_feedback

    graph, cross_edges = comb_feedback(module)
    # Oscillation requires a feedback loop whose state crosses evaluation
    # passes: a cycle in the full read graph containing a cross-pass edge.
    component_of: dict[str, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = index
    for src, dst in cross_edges:
        if src == dst or component_of.get(src) == component_of.get(dst):
            return True
    return False


def dead_statement_ids(module: Module) -> set[int]:
    """Statement ids whose target is outside every output's cone.

    Delegates to the lint layer's dead-code analysis
    (:func:`repro.lint.unobservable_statement_ids`).  A bug injected into
    such a statement can never symptomatize at any output, so campaigns
    skip those sites (``sample_mutations(..., exclude_dead=True)``).
    Empty for designs without outputs.
    """
    from ..lint.deadcode import unobservable_statement_ids

    return unobservable_statement_ids(module)


def sample_mutations(
    module: Module,
    counts: dict[str, int],
    seed: int = 0,
    restrict_to: set[int] | None = None,
    min_operands: int = 0,
    exclude_dead: bool = False,
) -> list[Mutation]:
    """Sample a bug-injection campaign plan.

    Args:
        module: The golden design.
        counts: Mutation kind -> number of mutants to draw.
        seed: Sampling seed.
        restrict_to: Optional stmt_id filter; when localizing failures at
            a target output, restricting injection to the target's
            dependency cone mirrors the paper's per-target campaigns.
        min_operands: Forwarded to :func:`enumerate_mutations`; use 2
            for data-centric campaigns (see there).
        exclude_dead: Skip statements outside every output's dependency
            cone (:func:`dead_statement_ids`) — bugs there are
            unobservable.  A no-op when ``restrict_to`` is an output's
            cone, since dead statements are disjoint from it; sampling
            order (and thus the drawn plan) is unchanged in that case.

    Returns:
        The sampled mutations (cycle-inducing misuse mutants excluded).
    """
    import random

    rng = random.Random(seed)
    plan: list[Mutation] = []
    all_mutations = enumerate_mutations(
        module, kinds=tuple(counts), min_operands=min_operands
    )
    if restrict_to is not None:
        all_mutations = [m for m in all_mutations if m.stmt_id in restrict_to]
    if exclude_dead:
        dead = dead_statement_ids(module)
        if dead:
            all_mutations = [m for m in all_mutations if m.stmt_id not in dead]
    for kind, count in counts.items():
        pool = [m for m in all_mutations if m.kind == kind]
        rng.shuffle(pool)
        taken = 0
        for mutation in pool:
            if taken >= count:
                break
            try:
                mutant = apply_mutation(module, mutation)
            except ValueError:
                continue
            if creates_combinational_cycle(mutant):
                continue
            plan.append(mutation)
            taken += 1
    return plan
