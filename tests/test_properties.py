"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Vocabulary, normalized_l1_distance
from repro.datagen import RandomVerilogDesignGenerator, RVDGConfig
from repro.nn import Tensor, segment_softmax, segment_sum, softmax
from repro.sim import Simulator, TestbenchConfig, generate_stimulus
from repro.sim import values as V
from repro.verilog import parse_module
from repro.verilog.printer import format_module

# ----------------------------------------------------------------------
# Value arithmetic
# ----------------------------------------------------------------------

widths = st.integers(min_value=1, max_value=64)


@given(st.integers(min_value=-(2**70), max_value=2**70), widths)
def test_truncate_is_idempotent_and_in_range(value, width):
    once = V.truncate(value, width)
    assert 0 <= once < (1 << width)
    assert V.truncate(once, width) == once


@given(st.integers(min_value=0, max_value=2**32), widths)
def test_set_then_get_bit_roundtrip(value, width):
    index = value % width
    for bit_value in (0, 1):
        updated = V.set_bit(value, index, bit_value)
        assert V.bit(updated, index) == bit_value


@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_reduce_xor_is_parity(value):
    assert V.reduce_xor(value, 16) == bin(value).count("1") % 2


# ----------------------------------------------------------------------
# Parser / printer round trip on generated designs
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_rvdg_roundtrip_is_stable(seed):
    gen = RandomVerilogDesignGenerator(
        RVDGConfig(n_inputs=3, n_state=2, n_outputs=2, n_branches=2), seed=seed
    )
    source = gen.generate_source("d")
    printed = format_module(parse_module(source))
    assert format_module(parse_module(printed)) == printed


def _ingested_corpus_designs():
    """Every usable design ingested from the committed corpus."""
    import pathlib

    from repro.ingest import ingest_directory

    corpus_dir = pathlib.Path(__file__).resolve().parents[1] / "examples" / "corpus"
    corpus = ingest_directory(corpus_dir)
    return sorted(corpus.designs.values(), key=lambda d: d.name)


@pytest.mark.parametrize(
    "design", _ingested_corpus_designs(), ids=lambda d: d.name
)
def test_ingested_corpus_roundtrip_is_stable(design):
    """parse -> print -> parse is a fixed point on every real corpus file."""
    printed = format_module(parse_module(design.source))
    assert format_module(parse_module(printed)) == printed
    assert parse_module(printed).name == design.name


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_rvdg_simulation_is_deterministic(seed):
    gen = RandomVerilogDesignGenerator(seed=seed)
    module = gen.generate("d")
    stim = generate_stimulus(module, TestbenchConfig(n_cycles=8), seed=seed)
    t1 = Simulator(module).run(stim)
    t2 = Simulator(module).run(stim)
    assert t1.outputs == t2.outputs
    assert t1.executions == t2.executions


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_printed_design_simulates_identically(seed):
    """Pretty-printing must preserve semantics, not just syntax."""
    gen = RandomVerilogDesignGenerator(seed=seed)
    module = gen.generate("d")
    reparsed = parse_module(format_module(module))
    stim = generate_stimulus(module, TestbenchConfig(n_cycles=8), seed=seed)
    assert Simulator(module).run(stim, record=False).outputs == (
        Simulator(reparsed).run(stim, record=False).outputs
    )


# ----------------------------------------------------------------------
# Expression evaluation against a Python oracle
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
    st.sampled_from(["&", "|", "^", "+", "-"]),
)
def test_evaluator_matches_python_oracle(a, b, op):
    module = parse_module(
        f"module t(y); reg [7:0] a, b; output [7:0] y;"
        f" assign y = a {op} b; endmodule"
    )
    from repro.sim.evaluator import Evaluator

    result = Evaluator(module).eval(module.assigns[0].rhs, {"a": a, "b": b})
    oracle = {
        "&": a & b,
        "|": a | b,
        "^": a ^ b,
        "+": (a + b) & 0xFF,
        "-": (a - b) & 0xFF,
    }[op]
    assert result == oracle


# ----------------------------------------------------------------------
# NN invariants
# ----------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=-20, max_value=20), min_size=2, max_size=8),
)
def test_softmax_is_distribution(scores):
    out = softmax(Tensor(np.array([scores])))
    assert np.all(out.data >= 0)
    assert np.isclose(out.data.sum(), 1.0)


@given(
    st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=4),
)
def test_segment_softmax_partitions(scores, n_segments):
    seg = np.array([i % n_segments for i in range(len(scores))])
    present = sorted(set(seg.tolist()))
    weights = segment_softmax(Tensor(np.array(scores)), seg, n_segments)
    sums = np.zeros(n_segments)
    np.add.at(sums, seg, weights.data)
    for segment in present:
        assert np.isclose(sums[segment], 1.0)


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=10),
)
def test_segment_sum_matches_numpy(data):
    seg = np.zeros(len(data), dtype=np.int64)
    out = segment_sum(Tensor(np.array(data).reshape(-1, 1)), seg, 1)
    assert np.isclose(out.data[0, 0], np.sum(data), atol=1e-6)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=6
    ).filter(lambda w: sum(w) > 0)
)
def test_normalized_distance_bounds(weights):
    w = np.array(weights)
    w = w / w.sum()
    other = np.roll(w, 1)
    d = normalized_l1_distance(w, other)
    assert 0.0 <= d <= 1.0
    assert normalized_l1_distance(w, w) == 0.0


# ----------------------------------------------------------------------
# Vocabulary
# ----------------------------------------------------------------------


@given(st.lists(st.sampled_from(["And", "Or", "Not", "Lvalue"]), max_size=6))
def test_vocab_encode_decode_roundtrip(path):
    vocab = Vocabulary()
    ids = vocab.encode_path(tuple(path))
    assert [vocab.decode(i) for i in ids] == list(path)
