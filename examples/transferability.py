#!/usr/bin/env python3
"""Transferability study (paper §VI-A claim).

VeriBug is trained once on synthetic RVDG designs and then applied to
unseen realistic designs *without retraining*.  This example quantifies
that transfer through the session API: one `VeriBugSession.train(...)`,
then `session.evaluate(...)` on executions from each realistic design —
high numbers mean the learned execution semantics generalize.

Run:  python examples/transferability.py
"""

from repro.analysis import extract_module_contexts
from repro.api import SessionConfig, VeriBugSession, design_testbench, load_design
from repro.core import build_samples
from repro.designs import REGISTRY
from repro.pipeline import CorpusSpec
from repro.sim import Simulator, generate_testbench_suite


def main() -> None:
    print("== training once on synthetic designs ==")
    session = VeriBugSession.train(
        SessionConfig().with_seed(1),
        # 20 RVDG designs: the design-level test split holds out whole
        # designs, so ~16 remain for training (the paper-scale corpus).
        CorpusSpec(n_designs=20, n_traces_per_design=4, n_cycles=25),
    )
    print(f"synthetic held-out accuracy: {session.test_metrics.accuracy:.3f}")

    print("\n== zero-shot evaluation on unseen realistic designs ==")
    print(f"{'design':<18} {'samples':>8} {'accuracy':>9} {'Pr/Re(0)':>10}"
          f" {'Pr/Re(1)':>10}")
    for name in REGISTRY:
        module = load_design(name)
        simulator = Simulator(module, engine=session.config.engine)
        stimuli = generate_testbench_suite(
            module, 4, design_testbench(name, n_cycles=25), seed=9
        )
        traces = simulator.run_suite(stimuli)
        contexts = extract_module_contexts(module.statements())
        samples = build_samples(contexts, traces, design=name)
        metrics = session.evaluate(samples)
        print(f"{name:<18} {metrics.n_samples:>8} {metrics.accuracy:>9.3f}"
              f" {metrics.precision[0]:>5.2f}/{metrics.recall[0]:.2f}"
              f" {metrics.precision[1]:>5.2f}/{metrics.recall[1]:.2f}")

    print("\nThe model never saw these designs (or any real design) during "
          "training;\naccuracy well above chance demonstrates the "
          "design-agnostic feature claim.")


if __name__ == "__main__":
    main()
