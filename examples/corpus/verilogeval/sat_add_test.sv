module sat_add_test;
    reg [7:0] a, b;
    wire [7:0] sum;
    wire sat;
    sat_add dut (.a(a), .b(b), .sum(sum), .sat(sat));
    initial begin
        repeat (32) #5 begin a = $random; b = $random; end
        $finish;
    end
endmodule
