// Parallel-to-serial converter, MSB first, reloading every 4 cycles.
module parallel2serial (clk, rst_n, d, valid_out, dout);
    input clk, rst_n;
    input [3:0] d;
    output valid_out;
    output dout;

    reg [3:0] data;
    reg [1:0] cnt;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            cnt <= 2'd0;
            data <= 4'd0;
        end else if (cnt == 2'd3) begin
            cnt <= 2'd0;
            data <= d;
        end else begin
            cnt <= cnt + 2'd1;
            data <= {data[2:0], 1'b0};
        end
    end

    assign dout = data[3];
    assign valid_out = (cnt == 2'd0);
endmodule
