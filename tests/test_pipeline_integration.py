"""Integration tests: the full train -> inject -> localize story."""

import numpy as np

from repro.analysis import compute_static_slice
from repro.core import render_heatmap
from repro.datagen import BugInjectionCampaign, sample_mutations
from repro.designs import design_testbench, load_design
from repro.pipeline import CorpusSpec, generate_corpus_samples, train_pipeline


class TestPipeline:
    def test_corpus_generation_yields_both_labels(self, tiny_samples):
        labels = {s.label for s in tiny_samples}
        assert labels == {0, 1}

    def test_corpus_deterministic(self, tiny_config):
        spec = CorpusSpec(n_designs=2, n_traces_per_design=1, n_cycles=8)
        a = generate_corpus_samples(spec, seed=3)
        b = generate_corpus_samples(spec, seed=3)
        assert len(a) == len(b)
        assert [s.label for s in a] == [s.label for s in b]

    def test_train_pipeline_metrics(self, tiny_config):
        pipeline = train_pipeline(
            tiny_config,
            CorpusSpec(n_designs=2, n_traces_per_design=1, n_cycles=8),
            seed=2,
        )
        assert pipeline.train_metrics is not None
        assert 0.0 <= pipeline.train_metrics.accuracy <= 1.0
        assert pipeline.test_metrics is not None

    def test_trained_model_beats_chance(self, trained_pipeline, tiny_samples):
        from repro.core import Trainer

        trainer = Trainer(
            trained_pipeline.model, trained_pipeline.encoder, trained_pipeline.config
        )
        metrics = trainer.evaluate(tiny_samples)
        assert metrics.accuracy > 0.75


class TestEndToEndCampaign:
    def test_wb_mux_campaign_localizes_something(self, trained_pipeline):
        module = load_design("wb_mux_2")
        target = "wbs0_we_o"
        cone = compute_static_slice(module, target).stmt_ids
        mutations = sample_mutations(
            module,
            {"negation": 2, "operation": 2, "misuse": 2},
            seed=11,
            restrict_to=cone,
        )
        campaign = BugInjectionCampaign(
            trained_pipeline.localizer,
            n_traces=10,
            testbench_config=design_testbench("wb_mux_2", n_cycles=10),
            seed=3,
            min_correct_traces=5,
        )
        result = campaign.run(module, target, mutations)
        assert result.observable >= 1
        assert result.localized >= 1

    def test_heatmap_renders_for_real_bug(self, trained_pipeline):
        module = load_design("wb_mux_2")
        target = "wbs0_stb_o"
        cone = compute_static_slice(module, target).stmt_ids
        mutations = sample_mutations(
            module, {"misuse": 3}, seed=1, restrict_to=cone
        )
        campaign = BugInjectionCampaign(
            trained_pipeline.localizer,
            n_traces=10,
            testbench_config=design_testbench("wb_mux_2", n_cycles=10),
            seed=5,
        )
        result = campaign.run(module, target, mutations)
        observable = [o for o in result.outcomes if o.observable]
        assert observable
        # Re-run localization for one observable mutant to get a heatmap.
        from repro.datagen import apply_mutation
        from repro.sim import Simulator, generate_testbench_suite

        outcome = observable[0]
        mutant = apply_mutation(module, outcome.mutation)
        stimuli = generate_testbench_suite(
            module, 10, design_testbench("wb_mux_2", n_cycles=10), seed=5
        )
        golden_sim, mutant_sim = Simulator(module), Simulator(mutant)
        failing, correct = [], []
        for stim in stimuli:
            golden_trace = golden_sim.run(stim, record=False)
            trace = mutant_sim.run(stim)
            if trace.diverges_from(golden_trace, signals=[target]):
                failing.append(trace)
            elif not trace.diverges_from(golden_trace, signals=module.outputs):
                correct.append(trace)
        if failing:
            result = trained_pipeline.localizer.localize(
                mutant, target, failing, correct
            )
            text = render_heatmap(
                mutant,
                result.heatmap,
                result.contexts,
                bug_stmt_id=outcome.mutation.stmt_id,
            )
            assert "Heatmap Ht" in text

    def test_transferability_same_model_multiple_designs(self, trained_pipeline):
        """Paper §VI-A: one synthetic-trained model works on all designs."""
        for name in ("wb_mux_2", "ibex_controller"):
            module = load_design(name)
            target = list(module.outputs)[0]
            from repro.analysis import extract_module_contexts
            from repro.core import build_samples
            from repro.sim import Simulator, generate_stimulus

            stim = generate_stimulus(module, design_testbench(name, 10), seed=0)
            trace = Simulator(module).run(stim)
            contexts = extract_module_contexts(module.statements())
            samples = build_samples(contexts, [trace], design=name)
            assert samples
            batch = trained_pipeline.encoder.encode(samples)
            output = trained_pipeline.model(batch)
            sums = np.zeros(batch.n_statements)
            np.add.at(sums, batch.operand_stmt, output.attention.data)
            assert np.allclose(sums, 1.0)
