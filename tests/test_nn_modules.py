"""Tests for functional ops, layers, LSTM, optimizers, loss, serialization."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    MLP,
    Adam,
    Embedding,
    Linear,
    LSTMCell,
    Parameter,
    SGD,
    Tensor,
    attention_norm_regularizer,
    class_weights_from_labels,
    concat,
    embedding,
    frobenius_norm,
    gather_rows,
    load_state,
    log_softmax,
    one_hot,
    save_state,
    segment_mean,
    segment_softmax,
    segment_sum,
    softmax,
    stack,
    veribug_loss,
    weighted_cross_entropy,
)

RNG = np.random.default_rng(7)


class TestFunctional:
    def test_concat_forward_backward(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3) and b.grad.shape == (2, 2)
        assert np.allclose(a.grad, 1.0)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * 2).sum().backward()
        assert np.allclose(b.grad, 2.0)

    def test_embedding_scatter_backward(self):
        table = Tensor(RNG.normal(size=(5, 2)), requires_grad=True)
        out = embedding(table, np.array([1, 1, 3]))
        out.sum().backward()
        assert np.allclose(table.grad[1], 2.0)
        assert np.allclose(table.grad[3], 1.0)
        assert np.allclose(table.grad[0], 0.0)

    def test_segment_sum_values(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = segment_sum(x, np.array([0, 0, 1]), 2)
        assert out.data.tolist() == [[3.0], [3.0]]

    def test_segment_sum_empty_segment(self):
        x = Tensor(np.ones((2, 1)))
        out = segment_sum(x, np.array([0, 0]), 3)
        assert out.data[2, 0] == 0.0

    def test_segment_mean(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = segment_mean(x, np.array([0, 0, 1]), 2)
        assert out.data.tolist() == [[3.0], [6.0]]

    def test_segment_softmax_sums_to_one_per_segment(self):
        scores = Tensor(RNG.normal(size=7), requires_grad=True)
        seg = np.array([0, 0, 0, 1, 1, 2, 2])
        weights = segment_softmax(scores, seg, 3)
        sums = np.zeros(3)
        np.add.at(sums, seg, weights.data)
        assert np.allclose(sums, 1.0)

    def test_segment_softmax_single_element_segment(self):
        scores = Tensor(np.array([5.0]))
        weights = segment_softmax(scores, np.array([0]), 1)
        assert np.allclose(weights.data, [1.0])

    def test_segment_softmax_stability_large_scores(self):
        scores = Tensor(np.array([1000.0, 1000.0]))
        weights = segment_softmax(scores, np.array([0, 0]), 1)
        assert np.allclose(weights.data, [0.5, 0.5])

    def test_softmax_matches_manual(self):
        x = Tensor(RNG.normal(size=(2, 3)))
        manual = np.exp(x.data) / np.exp(x.data).sum(axis=1, keepdims=True)
        assert np.allclose(softmax(x).data, manual)

    def test_log_softmax_consistency(self):
        x = Tensor(RNG.normal(size=(2, 3)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert out.tolist() == [[1, 0, 0], [0, 0, 1]]

    def test_gather_rows(self):
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        out = gather_rows(x, np.array([2, 0]))
        assert out.data.tolist() == [[4.0, 5.0], [0.0, 1.0]]

    def test_frobenius_norm(self):
        x = Tensor(np.array([[3.0, 4.0]]))
        assert np.isclose(frobenius_norm(x).item(), 5.0, atol=1e-5)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 3, RNG)
        out = layer(Tensor(RNG.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = Linear(4, 3, RNG, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_mlp_forward_and_params(self):
        mlp = MLP([4, 8, 2], RNG)
        out = mlp(Tensor(RNG.normal(size=(5, 4))))
        assert out.shape == (5, 2)
        assert len(mlp.parameters()) == 4  # two layers x (W, b)

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4], RNG)

    def test_mlp_unknown_activation(self):
        mlp = MLP([2, 2, 2], RNG, activation="nope")
        with pytest.raises(ValueError):
            mlp(Tensor(np.ones((1, 2))))

    def test_embedding_module(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_named_parameters_paths(self):
        mlp = MLP([2, 3, 1], RNG)
        names = [name for name, _p in mlp.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_state_dict_roundtrip(self):
        mlp = MLP([2, 3, 1], RNG)
        state = mlp.state_dict()
        mlp2 = MLP([2, 3, 1], np.random.default_rng(99))
        mlp2.load_state_dict(state)
        x = Tensor(RNG.normal(size=(4, 2)))
        assert np.allclose(mlp(x).data, mlp2(x).data)

    def test_load_state_dict_missing_key(self):
        mlp = MLP([2, 3, 1], RNG)
        with pytest.raises(KeyError):
            mlp.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        mlp = MLP([2, 3, 1], RNG)
        state = mlp.state_dict()
        state["layers.0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_zero_grad_clears(self):
        mlp = MLP([2, 2], RNG)
        out = mlp(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(3, 5, RNG)
        h, c = cell(
            Tensor(RNG.normal(size=(2, 3))),
            Tensor(np.zeros((2, 5))),
            Tensor(np.zeros((2, 5))),
        )
        assert h.shape == (2, 5) and c.shape == (2, 5)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(3, 5, RNG)
        assert np.allclose(cell.bias.data[5:10], 1.0)

    def test_mask_freezes_state(self):
        lstm = LSTM(2, 3, RNG)
        xs = RNG.normal(size=(1, 4, 2))
        mask_short = np.array([[1.0, 1.0, 0.0, 0.0]])
        h_short = lstm(Tensor(xs), mask_short)
        h_prefix = lstm(Tensor(xs[:, :2, :]), np.array([[1.0, 1.0]]))
        assert np.allclose(h_short.data, h_prefix.data)

    def test_ragged_batch_matches_individual(self):
        lstm = LSTM(2, 3, RNG)
        a = RNG.normal(size=(3, 2))
        b = RNG.normal(size=(1, 2))
        batch = np.zeros((2, 3, 2))
        batch[0] = a
        batch[1, :1] = b
        mask = np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 0.0]])
        h = lstm(Tensor(batch), mask)
        h_a = lstm(Tensor(a[None]), np.ones((1, 3)))
        h_b = lstm(Tensor(b[None]), np.ones((1, 1)))
        assert np.allclose(h.data[0], h_a.data[0])
        assert np.allclose(h.data[1], h_b.data[0])

    def test_gradients_flow_to_all_params(self):
        lstm = LSTM(2, 3, RNG)
        h = lstm(Tensor(RNG.normal(size=(2, 3, 2))), np.ones((2, 3)))
        (h * h).sum().backward()
        for p in lstm.parameters():
            assert p.grad is not None and np.abs(p.grad).sum() > 0


class TestOptim:
    def _quadratic_setup(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Parameter(np.zeros(3))
        return target, param

    def test_sgd_converges(self):
        target, param = self._quadratic_setup()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        target, param = self._quadratic_setup()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_adam_converges(self):
        target, param = self._quadratic_setup()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks_params(self):
        param = Parameter(np.array([10.0]))
        opt = Adam([param], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            (param * 0.0).sum().backward()  # zero data gradient
            opt.step()
        assert abs(param.data[0]) < 10.0

    def test_step_skips_gradless_params(self):
        param = Parameter(np.ones(2))
        opt = Adam([param], lr=0.1)
        opt.step()  # no grads accumulated; must not raise
        assert np.allclose(param.data, 1.0)


class TestLoss:
    def test_class_weights_inverse_frequency(self):
        weights = class_weights_from_labels(np.array([0, 0, 0, 1]))
        assert weights[1] > weights[0]

    def test_class_weights_missing_class(self):
        weights = class_weights_from_labels(np.array([1, 1]))
        assert weights.shape == (2,)
        assert np.isfinite(weights).all()

    def test_weighted_ce_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 1.0]]))
        labels = np.array([0, 1])
        weights = np.array([1.0, 3.0])
        loss = weighted_cross_entropy(logits, labels, weights)
        probs = np.exp(logits.data) / np.exp(logits.data).sum(1, keepdims=True)
        manual = -(1.0 * np.log(probs[0, 0]) + 3.0 * np.log(probs[1, 1])) / 4.0
        assert np.isclose(loss.item(), manual, atol=1e-8)

    def test_ce_gradient_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        weighted_cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0  # push class-1 logit up

    def test_regularizer_decreases_with_norm(self):
        small = Tensor(np.ones((2, 4)) * 0.1)
        large = Tensor(np.ones((2, 4)) * 10.0)
        seg = np.array([0, 1])
        r_small = attention_norm_regularizer(small, seg, 2).item()
        r_large = attention_norm_regularizer(large, seg, 2).item()
        assert r_small > r_large

    def test_veribug_loss_parts(self):
        logits = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        updated = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
        seg = np.array([0, 0, 1, 1, 2, 2])
        loss, parts = veribug_loss(
            logits, np.array([0, 1, 0]), updated, seg, alpha=0.5
        )
        assert np.isclose(loss.item(), parts["ce"] + 0.5 * parts["reg"], atol=1e-9)
        loss.backward()
        assert logits.grad is not None and updated.grad is not None


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        mlp = MLP([3, 4, 2], RNG)
        path = tmp_path / "model.npz"
        save_state(mlp, path)
        other = MLP([3, 4, 2], np.random.default_rng(5))
        load_state(other, path)
        x = Tensor(RNG.normal(size=(2, 3)))
        assert np.allclose(mlp(x).data, other(x).data)
