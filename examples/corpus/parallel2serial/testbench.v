module testbench;
    reg clk, rst_n;
    reg [3:0] d;
    wire valid_out, dout;
    parallel2serial dut (.clk(clk), .rst_n(rst_n), .d(d),
                         .valid_out(valid_out), .dout(dout));
    always #5 clk = ~clk;
    initial begin
        clk = 0; rst_n = 0; d = 4'b1010;
        #12 rst_n = 1;
        repeat (16) @(posedge clk) d = $random;
        $finish;
    end
endmodule
