// Countdown timer; the initial block (testbench habit) is skipped at
// ingest and random stimulus is derived instead.
module timer_partial (clk, rst_n, start, preset, expired);
    input clk, rst_n, start;
    input [7:0] preset;
    output expired;

    reg [7:0] count;

    initial begin
        count = 8'hFF;
    end

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            count <= 8'h00;
        else if (start)
            count <= preset;
        else if (count != 8'h00)
            count <= count - 8'd1;
    end

    assign expired = (count == 8'h00) & ~start;
endmodule
