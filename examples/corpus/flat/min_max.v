// Running min/max over a streamed byte sequence.
module min_max (clk, rst_n, d, load, min_val, max_val);
    input clk, rst_n, load;
    input [7:0] d;
    output reg [7:0] min_val, max_val;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            min_val <= 8'hFF;
            max_val <= 8'h00;
        end else if (load) begin
            if (d < min_val)
                min_val <= d;
            if (d > max_val)
                max_val <= d;
        end
    end
endmodule
