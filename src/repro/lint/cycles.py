"""Combinational feedback analysis and the cycle lint rule.

The simulator evaluates combinational processes in order and iterates to
a fixpoint, so a read is only a *cross-pass* dependence when the read
variable is combinationally driven and has not yet been assigned
unconditionally earlier in the same pass of the same process (ordered
blocking-assignment semantics).  A dependence cycle that contains a
cross-pass edge means the fixpoint may not exist — the design can
oscillate.  :func:`comb_feedback` builds that dependence structure;
``cycle.comb`` reports each oscillation-capable cycle, and the mutation
engine's :func:`repro.datagen.mutation.creates_combinational_cycle`
rejects mutants on exactly the same analysis.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from ..diagnostics import Diagnostic
from ..verilog.ast_nodes import (
    Assignment,
    Block,
    Case,
    If,
    Module,
    Statement,
    collect_identifiers,
)
from .engine import LintContext, Rule


def comb_feedback(
    module: Module,
) -> tuple[nx.DiGraph, set[tuple[str, str]]]:
    """Combinational read-dependence graph plus its cross-pass edges.

    Returns:
        ``(graph, cross_edges)``: a directed graph with an edge
        ``u -> v`` for every combinational read of ``u`` feeding an
        assignment to ``v``, and the subset of edges whose read happens
        *across* settle passes (the read variable was not already
        assigned unconditionally earlier in the same pass).  A cycle is
        oscillation-capable iff it contains a cross-pass edge.
    """
    comb_driven: set[str] = {a.target.name for a in module.assigns}
    for blk in module.always_blocks:
        if blk.is_clocked:
            continue
        for node in blk.body.walk():
            if isinstance(node, Assignment):
                comb_driven.add(node.target.name)

    graph = nx.DiGraph()
    cross_edges: set[tuple[str, str]] = set()

    def read_edges(names: list[str], targets: set[str], assigned: set[str]) -> None:
        for src in names:
            if src not in comb_driven:
                continue
            cross_pass = src not in assigned
            for dst in targets:
                graph.add_edge(src, dst)
                if cross_pass:
                    cross_edges.add((src, dst))

    def targets_of(stmt: Statement) -> set[str]:
        found: set[str] = set()
        for node in stmt.walk():
            if isinstance(node, Assignment):
                found.add(node.target.name)
        return found

    def walk(stmt: Statement, assigned: set[str]) -> set[str]:
        """Process a statement; return vars unconditionally assigned by it."""
        if isinstance(stmt, Block):
            newly: set[str] = set()
            for child in stmt.statements:
                newly |= walk(child, assigned | newly)
            return newly
        if isinstance(stmt, If):
            read_edges(
                collect_identifiers(stmt.cond), targets_of(stmt), assigned
            )
            then_assigned = walk(stmt.then_stmt, set(assigned))
            if stmt.else_stmt is not None:
                else_assigned = walk(stmt.else_stmt, set(assigned))
                return then_assigned & else_assigned
            return set()
        if isinstance(stmt, Case):
            names = collect_identifiers(stmt.subject)
            for item in stmt.items:
                for label in item.labels:
                    names.extend(collect_identifiers(label))
            read_edges(names, targets_of(stmt), assigned)
            branch_sets = [walk(item.body, set(assigned)) for item in stmt.items]
            has_default = any(not item.labels for item in stmt.items)
            if branch_sets and has_default:
                common = branch_sets[0]
                for bs in branch_sets[1:]:
                    common = common & bs
                return common
            return set()
        if isinstance(stmt, Assignment):
            read_edges(collect_identifiers(stmt.rhs), {stmt.target.name}, assigned)
            return {stmt.target.name}
        return set()

    for assign in module.assigns:
        read_edges(
            collect_identifiers(assign.rhs), {assign.target.name}, assigned=set()
        )
    for blk in module.always_blocks:
        if not blk.is_clocked:
            walk(blk.body, set())
    return graph, cross_edges


def oscillating_components(module: Module) -> list[list[str]]:
    """Signal groups forming oscillation-capable combinational cycles.

    Each returned group is the sorted signal set of one strongly
    connected component of the combinational read graph that contains a
    cross-pass edge (including single-signal self-loops).
    """
    graph, cross_edges = comb_feedback(module)
    component_of: dict[str, int] = {}
    components: list[set[str]] = []
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        components.append(set(component))
        for node in component:
            component_of[node] = index
    guilty: set[int] = set()
    for src, dst in cross_edges:
        if src == dst:
            guilty.add(component_of[src])
        elif component_of.get(src) == component_of.get(dst):
            guilty.add(component_of[src])
    return sorted(sorted(components[i]) for i in guilty)


class CombinationalCycleRule(Rule):
    id = "cycle.comb"
    severity = "error"
    description = "combinational feedback loop (simulation may oscillate)"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        module = ctx.module
        for group in oscillating_components(module):
            # Anchor the finding at the first driver of the cycle's
            # lexically first signal.
            line, col = 1, 1
            for signal in group:
                sites = ctx.drivers.get(signal)
                if sites:
                    line, col = sites[0].stmt.line, sites[0].stmt.col
                    break
            member = ", ".join(group)
            yield self.finding(
                ctx,
                line,
                col,
                f"combinational cycle through {member}"
                " (fixpoint may oscillate)",
            )
