module testbench;
    reg clk, rst, d;
    wire [7:0] q;
    right_shifter dut (.clk(clk), .rst(rst), .d(d), .q(q));
    always #5 clk = ~clk;
    initial begin
        clk = 0; rst = 1; d = 0;
        #12 rst = 0;
        repeat (24) @(posedge clk) d = $random;
        $finish;
    end
endmodule
