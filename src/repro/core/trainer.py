"""Training loop and evaluation metrics for the VeriBug model.

Follows §V "Training model": Adam (lr 1e-3, weight decay 1e-5),
mini-batches of sampled statements, inverse-class-frequency loss weights,
and the α-weighted attention-norm regularizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Adam, class_weights_from_labels, veribug_loss
from .config import VeriBugConfig
from .features import BatchEncoder, Sample
from .model import VeriBugModel


@dataclass
class EvalMetrics:
    """Prediction quality on a sample set (paper Table II columns).

    ``precision``/``recall`` are per target bit value, indexed by class.
    """

    accuracy: float
    precision: tuple[float, float]
    recall: tuple[float, float]
    n_samples: int

    def row(self) -> str:
        """Format as a Table-II-style row fragment."""
        return (
            f"{self.accuracy * 100:5.1f} "
            f"{self.precision[0]:.2f}/{self.recall[0]:.2f} "
            f"{self.precision[1]:.2f}/{self.recall[1]:.2f}"
        )


@dataclass
class TrainHistory:
    """Per-epoch loss curve."""

    losses: list[float] = field(default_factory=list)
    ce_terms: list[float] = field(default_factory=list)
    reg_terms: list[float] = field(default_factory=list)


class Trainer:
    """Trains a :class:`VeriBugModel` on execution samples."""

    def __init__(
        self,
        model: VeriBugModel,
        encoder: BatchEncoder,
        config: VeriBugConfig | None = None,
    ):
        self.model = model
        self.encoder = encoder
        self.config = config or model.config
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )

    def train(
        self,
        samples: list[Sample],
        epochs: int | None = None,
        log: bool = False,
    ) -> TrainHistory:
        """Run minibatch SGD over the sample set.

        Args:
            samples: Training samples (statement executions).
            epochs: Override the configured epoch count.
            log: Print per-epoch losses.

        Returns:
            The loss history.
        """
        if not samples:
            raise ValueError("cannot train on an empty sample list")
        # Stage-1 embeddings memoized by earlier inference (e.g. a
        # mid-training evaluate) are stale the moment a step runs.
        self.model.context_cache.clear()
        epochs = epochs if epochs is not None else self.config.epochs
        rng = np.random.default_rng(self.config.seed)
        labels = np.array([s.label for s in samples])
        class_weights = class_weights_from_labels(labels)
        history = TrainHistory()

        for epoch in range(epochs):
            order = rng.permutation(len(samples))
            epoch_loss = 0.0
            epoch_ce = 0.0
            epoch_reg = 0.0
            n_batches = 0
            for start in range(0, len(samples), self.config.batch_size):
                chunk = [samples[i] for i in order[start : start + self.config.batch_size]]
                batch = self.encoder.encode(chunk)
                output = self.model(batch)
                loss, parts = veribug_loss(
                    output.logits,
                    batch.labels,
                    output.updated_embeddings,
                    batch.operand_stmt,
                    class_weights=class_weights,
                    alpha=self.config.alpha,
                )
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
                epoch_ce += parts["ce"]
                epoch_reg += parts["reg"]
                n_batches += 1
            history.losses.append(epoch_loss / n_batches)
            history.ce_terms.append(epoch_ce / n_batches)
            history.reg_terms.append(epoch_reg / n_batches)
            if log:
                print(
                    f"epoch {epoch + 1:3d}/{epochs}: "
                    f"loss={history.losses[-1]:.4f} "
                    f"ce={history.ce_terms[-1]:.4f} reg={history.reg_terms[-1]:.4f}"
                )
        # Weights changed wholesale: flush memoized embeddings and let
        # weight listeners (e.g. an execution runtime holding read-only
        # worker snapshots) version the new state.
        self.model._on_state_loaded()
        return history

    def evaluate(self, samples: list[Sample], batch_size: int = 512) -> EvalMetrics:
        """Compute accuracy and per-class precision/recall."""
        if not samples:
            raise ValueError("cannot evaluate on an empty sample list")
        predictions: list[int] = []
        labels: list[int] = []
        # predict() runs each forward pass under inference_mode; encoding
        # is pure numpy, so no outer no-grad scope is needed.
        for start in range(0, len(samples), batch_size):
            chunk = samples[start : start + batch_size]
            batch = self.encoder.encode(chunk)
            predictions.extend(self.model.predict(batch).tolist())
            labels.extend(batch.labels.tolist())
        return compute_metrics(np.array(labels), np.array(predictions))


def compute_metrics(labels: np.ndarray, predictions: np.ndarray) -> EvalMetrics:
    """Accuracy plus per-class precision/recall for binary targets."""
    accuracy = float((labels == predictions).mean())
    precision: list[float] = []
    recall: list[float] = []
    for cls in (0, 1):
        predicted = predictions == cls
        actual = labels == cls
        tp = float((predicted & actual).sum())
        precision.append(tp / predicted.sum() if predicted.sum() else 0.0)
        recall.append(tp / actual.sum() if actual.sum() else 0.0)
    return EvalMetrics(
        accuracy=accuracy,
        precision=(precision[0], precision[1]),
        recall=(recall[0], recall[1]),
        n_samples=len(labels),
    )
