"""Width diagnostics: truncating assignments and impossible compares.

Both rules reuse the compiler's self-determined width model
(:meth:`repro.sim.evaluator.Evaluator.width_of` semantics) through the
context's *value-aware* variant, which sizes unsized literals and
parameters by their value instead of the 32-bit container — ``y = 1;``
into a 1-bit net is fine, ``y = a + b;`` of two 8-bit operands into a
4-bit net is not.

* ``width.truncation`` — the RHS resolves wider than the assignment
  target, so high bits are silently dropped.
* ``width.oversized-constant`` — an equality/relational compare against
  a constant that cannot fit the other side's width; the comparison is
  constant (``==`` never true, ``!=`` always true, …), which almost
  always means a mistyped literal or a too-narrow signal.
"""

from __future__ import annotations

from typing import Iterable

from ..diagnostics import Diagnostic
from ..verilog.ast_nodes import BinaryOp, Expr, Identifier, Number
from .engine import LintContext, Rule, iter_assignments, lvalue_width

#: Comparison operators checked against oversized constants.
_COMPARES = ("==", "!=", "===", "!==", "<", "<=", ">", ">=")


class TruncatingAssignmentRule(Rule):
    id = "width.truncation"
    severity = "warning"
    description = "assignment RHS wider than its target (high bits dropped)"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for stmt, _clocked, _procedural in iter_assignments(ctx.module):
            target_width = lvalue_width(ctx, stmt.target)
            rhs_width = ctx.value_width(stmt.rhs)
            if target_width is None or rhs_width is None:
                continue
            if rhs_width > target_width:
                yield self.finding(
                    ctx,
                    stmt.line,
                    stmt.col,
                    f"assignment to {stmt.target.name!r} truncates a"
                    f" {rhs_width}-bit expression to {target_width} bit(s)",
                )


class OversizedConstantRule(Rule):
    id = "width.oversized-constant"
    severity = "warning"
    description = "comparison against a constant that cannot fit the signal"

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        for node in ctx.module.walk():
            if not (isinstance(node, BinaryOp) and node.op in _COMPARES):
                continue
            for operand, other in (
                (node.right, node.left),
                (node.left, node.right),
            ):
                finding = self._check_pair(ctx, node, operand, other)
                if finding is not None:
                    yield finding
                    break

    def _check_pair(
        self, ctx: LintContext, node: BinaryOp, constant: Expr, other: Expr
    ) -> Diagnostic | None:
        if not isinstance(constant, Number) and not (
            isinstance(constant, Identifier)
            and constant.name in ctx.module.params
        ):
            return None
        value = ctx.const_value(constant)
        if value is None or value < 0:
            return None
        # Only flag against a resolvable non-constant side: comparing
        # two constants is the constant-branch rule's business.
        if ctx.const_value(other) is not None:
            return None
        other_width = ctx.value_width(other)
        if other_width is None or other_width >= 64:
            return None
        if value <= (1 << other_width) - 1:
            return None
        return self.finding(
            ctx,
            node.line,
            node.col,
            f"comparison {node.op!r} against constant {value} exceeds the"
            f" {other_width}-bit range of the other operand"
            " (result is constant)",
        )
