"""The lint engine: pluggable semantic rules over a parsed design.

A :class:`Rule` inspects one design through a :class:`LintContext` — a
lazy bundle of the module plus the static-analysis substrate the rules
share (driver map, read map, VDG, width resolution, output dependency
cones) — and yields :class:`~repro.diagnostics.Diagnostic` findings.
:class:`LintEngine` runs a rule set over a module and returns a
:class:`LintReport` with the findings in the stable diagnostic order.

The engine is purely observational: it never modifies the module, and
running it (or not) must not change any simulation or localization
result.  Severity semantics:

* ``error`` — the design's semantics are broken or simulator-hostile
  (multiply-driven signals, combinational cycles); ingestion can be
  configured to reject on these (``lint_policy="reject-errors"``).
* ``warning`` — legal but suspect (inferred latches, blocking/
  nonblocking style races, truncating widths, dead code).
* ``info`` — advisory notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..diagnostics import SEVERITIES, Diagnostic, sort_diagnostics
from ..verilog.ast_nodes import (
    Assignment,
    Block,
    Case,
    Identifier,
    If,
    Module,
    Number,
    Statement,
)


@dataclass(frozen=True)
class DriverSite:
    """One place a signal is written.

    Attributes:
        signal: The written signal name.
        process: Process key — ``("assign", i)`` for the i-th continuous
            assign, ``("always", i)`` for the i-th always block.
        clocked: True when the writing process is edge-triggered.
        blocking: True for blocking writes (continuous assigns count as
            blocking; they have no scheduling phase to race with).
        stmt: The writing statement.
    """

    signal: str
    process: tuple[str, int]
    clocked: bool
    blocking: bool
    stmt: Statement


class LintContext:
    """Everything a rule may inspect, computed lazily and shared.

    One context is built per linted module; rules running under the same
    engine invocation see the same driver/read maps and graphs, so the
    substrate is computed at most once however many rules consume it.
    """

    def __init__(self, module: Module, file: str = "<design>"):
        self.module = module
        self.file = file
        self._drivers: dict[str, list[DriverSite]] | None = None
        self._reads: dict[str, tuple[int, int]] | None = None
        self._vdg = None
        self._evaluator = None
        self._observable_vars: set[str] | None = None

    # ------------------------------------------------------------------
    # Driver / read maps
    # ------------------------------------------------------------------
    @property
    def drivers(self) -> dict[str, list[DriverSite]]:
        """Signal name -> every site that writes it, source order."""
        if self._drivers is None:
            self._drivers = self._collect_drivers()
        return self._drivers

    @property
    def reads(self) -> dict[str, tuple[int, int]]:
        """Signal name -> ``(line, col)`` of its first read.

        A "read" is any appearance outside an assignment target: RHS
        expressions, branch conditions, case subjects and labels, lvalue
        bit/part-select indices, and sensitivity lists.
        """
        if self._reads is None:
            self._reads = self._collect_reads()
        return self._reads

    def _collect_drivers(self) -> dict[str, list[DriverSite]]:
        drivers: dict[str, list[DriverSite]] = {}

        def add(site: DriverSite) -> None:
            drivers.setdefault(site.signal, []).append(site)

        for index, assign in enumerate(self.module.assigns):
            add(
                DriverSite(
                    signal=assign.target.name,
                    process=("assign", index),
                    clocked=False,
                    blocking=True,
                    stmt=assign,
                )
            )
        for index, blk in enumerate(self.module.always_blocks):
            for node in blk.body.walk():
                if isinstance(node, Assignment):
                    add(
                        DriverSite(
                            signal=node.target.name,
                            process=("always", index),
                            clocked=blk.is_clocked,
                            blocking=node.blocking,
                            stmt=node,
                        )
                    )
        return drivers

    def _collect_reads(self) -> dict[str, tuple[int, int]]:
        reads: dict[str, tuple[int, int]] = {}

        def note(name: str, line: int, col: int) -> None:
            if name not in reads and name in self.module.decls:
                reads[name] = (line, col)

        def note_expr(expr) -> None:
            if expr is None:
                return
            for node in expr.walk():
                if isinstance(node, Identifier):
                    note(node.name, node.line, node.col)

        def walk(stmt: Statement) -> None:
            if isinstance(stmt, Block):
                for child in stmt.statements:
                    walk(child)
            elif isinstance(stmt, If):
                note_expr(stmt.cond)
                walk(stmt.then_stmt)
                if stmt.else_stmt is not None:
                    walk(stmt.else_stmt)
            elif isinstance(stmt, Case):
                note_expr(stmt.subject)
                for item in stmt.items:
                    for label in item.labels:
                        note_expr(label)
                    walk(item.body)
            elif isinstance(stmt, Assignment):
                note_expr(stmt.rhs)
                for sub in (stmt.target.index, stmt.target.msb, stmt.target.lsb):
                    note_expr(sub)

        for assign in self.module.assigns:
            note_expr(assign.rhs)
            for sub in (assign.target.index, assign.target.msb, assign.target.lsb):
                note_expr(sub)
        for blk in self.module.always_blocks:
            for item in blk.sens:
                note(item.signal, blk.line, blk.col)
            walk(blk.body)
        return reads

    # ------------------------------------------------------------------
    # Graphs / widths / cones
    # ------------------------------------------------------------------
    @property
    def vdg(self):
        """The module's variable dependency graph (built once)."""
        if self._vdg is None:
            from ..analysis import build_vdg

            self._vdg = build_vdg(self.module)
        return self._vdg

    @property
    def observable_vars(self) -> set[str]:
        """Union of every output's dependency cone (the live signal set).

        Empty for designs with no outputs — rules that reason about
        observability must skip such designs rather than flagging
        everything dead.
        """
        if self._observable_vars is None:
            from ..analysis import dependency_cone

            observable: set[str] = set()
            for output in self.module.outputs:
                observable |= dependency_cone(self.vdg, output)
            self._observable_vars = observable
        return self._observable_vars

    def const_value(self, expr) -> int | None:
        """Evaluate an expression of literals/parameters, else None."""
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Identifier):
            param = self.module.params.get(expr.name)
            return param.value if param is not None else None
        if not all(
            ident in self.module.params
            for ident in _expr_identifiers(expr)
        ):
            return None
        if self._evaluator is None:
            from ..sim.evaluator import Evaluator

            self._evaluator = Evaluator(self.module)
        try:
            return self._evaluator.eval(expr, {})
        except Exception:  # noqa: BLE001 - any failure means "not constant"
            return None

    def value_width(self, expr) -> int | None:
        """Value-aware self-determined width of an expression.

        Like :meth:`repro.sim.evaluator.Evaluator.width_of`, except that
        unsized literals and parameters take the width of their *value*
        (minimum 1) instead of the 32-bit container — the width a reader
        means, which is what width lints should compare against.
        Returns None when the expression's width cannot be resolved.
        """
        return _value_width(self, expr)


def _expr_identifiers(expr) -> Iterator[str]:
    for node in expr.walk():
        if isinstance(node, Identifier):
            yield node.name


def _value_width(ctx: LintContext, expr) -> int | None:
    from ..verilog.ast_nodes import (
        BinaryOp,
        BitSelect,
        Concat,
        PartSelect,
        Repeat,
        Ternary,
        UnaryOp,
    )

    module = ctx.module
    if isinstance(expr, Identifier):
        decl = module.decls.get(expr.name)
        if decl is not None:
            return decl.width
        param = module.params.get(expr.name)
        if param is not None:
            return max(1, param.value.bit_length())
        return None
    if isinstance(expr, Number):
        if expr.width is not None:
            return expr.width
        return max(1, expr.value.bit_length())
    if isinstance(expr, UnaryOp):
        if expr.op in ("!", "&", "|", "^", "~&", "~|", "~^", "^~"):
            return 1
        return _value_width(ctx, expr.operand)
    if isinstance(expr, BinaryOp):
        if expr.op in ("&&", "||", "==", "!=", "===", "!==", "<", "<=", ">", ">="):
            return 1
        if expr.op in ("<<", ">>", "<<<", ">>>"):
            return _value_width(ctx, expr.left)
        left = _value_width(ctx, expr.left)
        right = _value_width(ctx, expr.right)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(expr, Ternary):
        then = _value_width(ctx, expr.then)
        otherwise = _value_width(ctx, expr.otherwise)
        if then is None or otherwise is None:
            return None
        return max(then, otherwise)
    if isinstance(expr, BitSelect):
        return 1
    if isinstance(expr, PartSelect):
        msb = ctx.const_value(expr.msb)
        lsb = ctx.const_value(expr.lsb)
        if msb is None or lsb is None:
            return None
        return abs(msb - lsb) + 1
    if isinstance(expr, Concat):
        total = 0
        for part in expr.parts:
            # Concat parts are context-determined; unsized literals keep
            # their value width here too (good enough for lint).
            width = _value_width(ctx, part)
            if width is None:
                return None
            total += width
        return total
    if isinstance(expr, Repeat):
        count = ctx.const_value(expr.count)
        width = _value_width(ctx, expr.value)
        if count is None or width is None:
            return None
        return count * width
    return None


def lvalue_width(ctx: LintContext, target) -> int | None:
    """Bit width of an assignment target (whole signal or select)."""
    decl = ctx.module.decls.get(target.name)
    if decl is None:
        return None
    if target.index is not None:
        return 1
    if target.msb is not None and target.lsb is not None:
        msb = ctx.const_value(target.msb)
        lsb = ctx.const_value(target.lsb)
        if msb is None or lsb is None:
            return None
        return abs(msb - lsb) + 1
    return decl.width


class Rule:
    """Base class of lint rules.

    Subclasses define the class attributes and implement :meth:`check`:

    * ``id`` — stable dotted rule id, ``"<family>.<name>"``.
    * ``severity`` — default severity of this rule's findings.
    * ``description`` — one-line catalog entry (used by docs and CLI).
    """

    id: str = ""
    severity: str = "warning"
    description: str = ""

    def check(self, ctx: LintContext) -> Iterable[Diagnostic]:
        """Yield findings for one design."""
        raise NotImplementedError

    def finding(
        self,
        ctx: LintContext,
        line: int,
        col: int,
        message: str,
        severity: str | None = None,
    ) -> Diagnostic:
        """Build one finding of this rule at a source location."""
        return Diagnostic(
            file=ctx.file,
            line=line or 1,
            col=col or 1,
            rule=self.id,
            severity=severity or self.severity,
            message=message,
        )


@dataclass
class LintReport:
    """Every finding of one engine run over one design.

    Findings are stored in the stable diagnostic sort order
    (``file:line:col``, then severity, then rule id).
    """

    design: str
    file: str
    findings: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.findings if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.findings if d.severity == "warning"]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.findings)

    def at_least(self, min_severity: str) -> list[Diagnostic]:
        """Findings at or above a severity ("error" ⊃ "warning" ⊃ "info")."""
        if min_severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {min_severity!r};"
                f" available: {', '.join(SEVERITIES)}"
            )
        cutoff = SEVERITIES.index(min_severity)
        return [
            d
            for d in self.findings
            if d.severity in SEVERITIES and SEVERITIES.index(d.severity) <= cutoff
        ]

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.findings if d.rule == rule_id]

    def counts(self) -> dict[str, int]:
        result = {severity: 0 for severity in SEVERITIES}
        for diag in self.findings:
            result[diag.severity] = result.get(diag.severity, 0) + 1
        result["findings"] = len(self.findings)
        return result

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "file": self.file,
            "counts": self.counts(),
            "findings": [d.to_dict() for d in self.findings],
        }


class LintEngine:
    """Runs a rule set over parsed designs.

    Args:
        rules: The rules to run; defaults to the full catalog
            (:func:`repro.lint.default_rules`).  Order does not matter —
            findings are sorted into the stable diagnostic order.
    """

    def __init__(self, rules: Sequence[Rule] | None = None):
        if rules is None:
            from . import default_rules

            rules = default_rules()
        self.rules: tuple[Rule, ...] = tuple(rules)
        seen: set[str] = set()
        for rule in self.rules:
            if not rule.id:
                raise ValueError(f"rule {type(rule).__name__} has no id")
            if rule.id in seen:
                raise ValueError(f"duplicate rule id {rule.id!r}")
            seen.add(rule.id)

    def run(self, module: Module, file: str = "<design>") -> LintReport:
        """Lint one parsed module; returns the sorted report."""
        ctx = LintContext(module, file=file)
        findings: list[Diagnostic] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        return LintReport(
            design=module.name,
            file=file,
            findings=sort_diagnostics(findings),
        )


def iter_assignments(module: Module) -> Iterator[tuple[Statement, bool, bool]]:
    """Yield ``(assignment, clocked, procedural)`` over the whole design."""
    for assign in module.assigns:
        yield assign, False, False
    for blk in module.always_blocks:
        for node in blk.body.walk():
            if isinstance(node, Assignment):
                yield node, blk.is_clocked, True


__all__ = [
    "DriverSite",
    "LintContext",
    "LintEngine",
    "LintReport",
    "Rule",
    "iter_assignments",
    "lvalue_width",
]
