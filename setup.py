"""Shim for environments whose setuptools predates PEP 660 editable wheels.

All metadata lives in pyproject.toml; this file only enables
``pip install -e .`` via the legacy develop-mode path when the ``wheel``
package is unavailable (as in the pinned CI/container toolchain).
"""

from setuptools import setup

setup()
