"""The VeriBug deep-learning model (paper §IV-C, Figure 3).

Three stages, all fully batched over ragged statements via segment ops:

1. **Operand embeddings** — each leaf-to-leaf path of an operand's context
   is embedded by PathRNN (an LSTM over node-type embeddings); path
   embeddings are summed into the context embedding ``c_i``; the operand's
   one-hot value encoding ``v_i`` is concatenated: ``x_i = (c_i || v_i)``.

2. **Weighted sum** — the aggregation layer computes updated embeddings
   ``x*_i = MLP_θ1(Σ_j x_j + ε · x_i)`` with a learnable skip weight ε;
   the attention layer scores each operand with the shared attention
   vector ``a`` and softmax-normalizes within the statement:
   ``w = softmax(a · X*ᵀ)``; the statement embedding is ``Σ_i w_i x_i``.

3. **Final prediction** — ``MLP_θ2`` maps the statement embedding to
   2-class logits for the LHS value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import (
    LSTM,
    MLP,
    Embedding,
    Module,
    Parameter,
    Tensor,
    concat,
    gather_rows,
    inference_mode,
    segment_softmax,
    segment_sum,
)
from .config import VeriBugConfig
from .features import EncodedBatch
from .vocab import Vocabulary


@dataclass
class ModelOutput:
    """Everything the trainer and explainer need from one forward pass.

    Attributes:
        logits: ``[B, 2]`` statement-level prediction logits.
        attention: ``[M]`` attention weight per operand row (sums to 1
            within each statement).
        updated_embeddings: ``[M, da]`` the ``x*`` matrix rows (input to
            the regularizer).
        operand_stmt: ``[M]`` owning statement per operand row.
        operand_counts: Operands per statement, for unflattening.
    """

    logits: Tensor
    attention: Tensor
    updated_embeddings: Tensor
    operand_stmt: np.ndarray
    operand_counts: list[int]

    def attention_per_statement(self) -> list[np.ndarray]:
        """Split the flat attention vector back into per-statement arrays."""
        weights = self.attention.data
        result: list[np.ndarray] = []
        offset = 0
        for count in self.operand_counts:
            result.append(weights[offset : offset + count].copy())
            offset += count
        return result

    def predictions(self) -> np.ndarray:
        """Argmax class per statement."""
        return self.logits.data.argmax(axis=1)


class VeriBugModel(Module):
    """PathRNN + aggregation + attention head + predictor.

    Example:
        >>> import numpy as np
        >>> from repro.core import VeriBugConfig, Vocabulary
        >>> model = VeriBugModel(VeriBugConfig(), Vocabulary())
    """

    def __init__(self, config: VeriBugConfig, vocab: Vocabulary):
        self.config = config
        self.vocab = vocab
        rng = np.random.default_rng(config.seed)
        self.node_embedding = Embedding(len(vocab), config.node_embed_dim, rng)
        self.path_rnn = LSTM(config.node_embed_dim, config.dc, rng)
        self.aggregation_mlp = MLP(
            [config.operand_dim, config.da, config.da], rng, activation="leaky_relu"
        )
        self.epsilon = Parameter(np.array(0.1), name="epsilon")
        self.attention_vector = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(config.da), size=config.da), name="attention"
        )
        self.predictor = MLP(
            [config.operand_dim, config.predictor_hidden, 2],
            rng,
            activation="leaky_relu",
        )

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, batch: EncodedBatch) -> ModelOutput:
        """Run the full model on an encoded batch."""
        x = self._operand_embeddings(batch)
        updated = self._aggregation(x, batch)
        attention = self._attention_weights(updated, batch)
        statement = segment_sum(
            attention.reshape(-1, 1) * x, batch.operand_stmt, batch.n_statements
        )
        logits = self.predictor(statement)
        return ModelOutput(
            logits=logits,
            attention=attention,
            updated_embeddings=updated,
            operand_stmt=batch.operand_stmt,
            operand_counts=batch.operand_counts,
        )

    def _operand_embeddings(self, batch: EncodedBatch) -> Tensor:
        """Stage 1: ``x_i = (c_i || v_i)`` for every operand row."""
        tokens = self.node_embedding(batch.path_tokens)  # [P, T, E]
        path_embed = self.path_rnn(tokens, batch.path_mask)  # [P, dc]
        context = segment_sum(path_embed, batch.path_operand, batch.n_operands)
        value = Tensor(batch.value_onehot)
        return concat([context, value], axis=1)  # [M, dc+dv]

    def _aggregation(self, x: Tensor, batch: EncodedBatch) -> Tensor:
        """Stage 2a: ``x*_i = MLP_θ1(Σ_j x_j + ε · x_i)``."""
        stmt_sum = segment_sum(x, batch.operand_stmt, batch.n_statements)
        broadcast = gather_rows(stmt_sum, batch.operand_stmt)  # [M, dc+dv]
        return self.aggregation_mlp(broadcast + self.epsilon * x)

    def _attention_weights(self, updated: Tensor, batch: EncodedBatch) -> Tensor:
        """Stage 2b: ``softmax(a · x*_i)`` within each statement."""
        scores = updated @ self.attention_vector  # [M]
        return segment_softmax(scores, batch.operand_stmt, batch.n_statements)

    # ------------------------------------------------------------------
    # Convenience inference
    # ------------------------------------------------------------------
    def predict(self, batch: EncodedBatch) -> np.ndarray:
        """Class predictions without keeping the autograd graph."""
        with inference_mode():
            return self.forward(batch).predictions()
