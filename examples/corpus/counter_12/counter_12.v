// Modulo-12 up counter with enable and terminal-count strobe.
module counter_12 (clk, rst_n, en, count, tc);
    input clk, rst_n, en;
    output reg [3:0] count;
    output tc;

    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            count <= 4'd0;
        else if (en) begin
            if (count == 4'd11)
                count <= 4'd0;
            else
                count <= count + 4'd1;
        end
    end

    assign tc = en & (count == 4'd11);
endmodule
