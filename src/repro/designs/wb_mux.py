"""``wb_mux_2`` — Wishbone 2-port multiplexer (paper Table I, 65 LoC).

A master-side Wishbone interconnect that routes one master port to one of
two slave ports by address decode.  Targets used in the paper's campaign
(Table III): ``wbs0_we_o`` and ``wbs0_stb_o``.
"""

SOURCE = """
module wb_mux_2 (
    wb_clk_i, wb_rst_i,
    wbm_adr_i, wbm_dat_i, wbm_we_i, wbm_stb_i, wbm_cyc_i,
    wbm_dat_o, wbm_ack_o, wbm_err_o,
    wbs0_adr_o, wbs0_dat_o, wbs0_dat_i, wbs0_we_o, wbs0_stb_o,
    wbs0_cyc_o, wbs0_ack_i, wbs0_err_i,
    wbs1_adr_o, wbs1_dat_o, wbs1_dat_i, wbs1_we_o, wbs1_stb_o,
    wbs1_cyc_o, wbs1_ack_i, wbs1_err_i
);
    input wb_clk_i, wb_rst_i;
    input [7:0] wbm_adr_i;
    input [7:0] wbm_dat_i;
    input wbm_we_i, wbm_stb_i, wbm_cyc_i;
    output reg [7:0] wbm_dat_o;
    output wbm_ack_o, wbm_err_o;

    output [7:0] wbs0_adr_o;
    output [7:0] wbs0_dat_o;
    input [7:0] wbs0_dat_i;
    output wbs0_we_o, wbs0_stb_o, wbs0_cyc_o;
    input wbs0_ack_i, wbs0_err_i;

    output [7:0] wbs1_adr_o;
    output [7:0] wbs1_dat_o;
    input [7:0] wbs1_dat_i;
    output wbs1_we_o, wbs1_stb_o, wbs1_cyc_o;
    input wbs1_ack_i, wbs1_err_i;

    parameter WBS0_ADDR = 8'h00;
    parameter WBS1_ADDR = 8'h80;
    parameter ADDR_MASK = 8'h80;

    wire wbs0_match;
    wire wbs1_match;
    wire wbs0_sel;
    wire wbs1_sel;
    reg  cycle_active;

    assign wbs0_match = (wbm_adr_i & ADDR_MASK) == (WBS0_ADDR & ADDR_MASK);
    assign wbs1_match = (wbm_adr_i & ADDR_MASK) == (WBS1_ADDR & ADDR_MASK);

    assign wbs0_sel = wbs0_match & ~(wbs1_match & ~wbs0_match);
    assign wbs1_sel = wbs1_match & ~wbs0_match;

    assign wbs0_adr_o = wbm_adr_i;
    assign wbs0_dat_o = wbm_dat_i;
    assign wbs0_we_o  = wbm_we_i & wbs0_sel & wbm_cyc_i;
    assign wbs0_stb_o = wbm_stb_i & wbs0_sel & wbm_cyc_i;
    assign wbs0_cyc_o = wbm_cyc_i & wbs0_sel;

    assign wbs1_adr_o = wbm_adr_i;
    assign wbs1_dat_o = wbm_dat_i;
    assign wbs1_we_o  = wbm_we_i & wbs1_sel & wbm_cyc_i;
    assign wbs1_stb_o = wbm_stb_i & wbs1_sel & wbm_cyc_i;
    assign wbs1_cyc_o = wbm_cyc_i & wbs1_sel;

    assign wbm_ack_o = (wbs0_ack_i & wbs0_sel) | (wbs1_ack_i & wbs1_sel);
    assign wbm_err_o = (wbs0_err_i & wbs0_sel) | (wbs1_err_i & wbs1_sel)
                     | (wbm_cyc_i & wbm_stb_i & ~wbs0_match & ~wbs1_match);

    always @(posedge wb_clk_i) begin
        if (wb_rst_i)
            cycle_active <= 1'b0;
        else
            cycle_active <= wbm_cyc_i & wbm_stb_i & ~wbm_ack_o;
    end

    always @(*) begin
        if (wbs0_sel & cycle_active)
            wbm_dat_o = wbs0_dat_i;
        else if (wbs1_sel)
            wbm_dat_o = wbs1_dat_i;
        else
            wbm_dat_o = 8'h00;
    end
endmodule
"""

#: Campaign targets from Table III.
TARGETS = ("wbs0_we_o", "wbs0_stb_o")

DESCRIPTION = "Wishbone 2-port Multiplexer"
