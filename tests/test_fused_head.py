"""Fused model-head kernels + attention-row memo: differential/property tests.

The contracts pinned here mirror ``tests/test_fused_rnn.py`` one layer up:

* **Differential** — ``model_forward_fused`` agrees with the autograd
  forward within 1e-9 on hypothesis-random ragged statement batches, and
  is bit-identical to the no-grad Tensor path it replaces.
* **Batch invariance** — a statement's attention row does not depend on
  which (ragged) batch it lands in (within 1e-9; BLAS batch-shape
  blocking perturbs the last ulp), the property that makes memoized rows
  reusable across batches.
* **Memo semantics** — rankings with the attention-row memo on equal the
  memo-off fast path and the autograd reference; keys are structural
  (statement structure + operand values, label excluded); the LRU bound
  and epoch accounting match the context cache's.
* **Gating** — every fused kernel (and the fused forward) refuses to run
  while autograd is enabled, including ``enable_grad`` nested inside
  ``inference_mode``.
* **Invalidation** — ``load_state_dict`` and a completed ``Trainer.train``
  run both clear the memo via the ``_on_state_loaded`` weight hook.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttentionRowMemo,
    BatchEncoder,
    Explainer,
    Trainer,
    VeriBugConfig,
    VeriBugModel,
    Vocabulary,
    model_forward_fused,
)
from repro.core.features import Sample
from repro.nn import (
    Tensor,
    enable_grad,
    inference_mode,
    linear_forward_fused,
    mlp_forward_fused,
    segment_softmax,
    segment_softmax_fused,
    segment_sum,
    segment_sum_fused,
)

from tests.test_fused_rnn import (
    make_context,
    model_switches,
    path_lists,
    planted_bug_case,
)

TOL = 1e-9


def tiny_model(seed: int = 0) -> VeriBugModel:
    config = VeriBugConfig(
        dc=8, da=12, node_embed_dim=8, predictor_hidden=12, seed=seed
    )
    return VeriBugModel(config, Vocabulary())


@st.composite
def statement_batches(draw):
    """Random ragged batches: per-statement operand counts, paths, values."""
    n_statements = draw(st.integers(min_value=1, max_value=4))
    samples = []
    for stmt_id in range(n_statements):
        n_operands = draw(st.integers(min_value=1, max_value=3))
        paths = [draw(path_lists) for _ in range(n_operands)]
        values = tuple(
            draw(st.integers(min_value=0, max_value=300))
            for _ in range(n_operands)
        )
        samples.append(
            Sample(
                context=make_context(stmt_id, n_operands, paths=paths),
                operand_values=values,
                label=draw(st.integers(min_value=0, max_value=1)),
            )
        )
    return samples


# ----------------------------------------------------------------------
# Kernel-level properties
# ----------------------------------------------------------------------


class TestSegmentKernels:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_rows=st.integers(min_value=1, max_value=24),
        n_segments=st.integers(min_value=1, max_value=8),
        extra_segments=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_segment_softmax_matches_autograd_and_ignores_padding(
        self, seed, n_rows, n_segments, extra_segments
    ):
        """The single-sweep masked softmax equals the autograd op exactly,
        and appending empty segments (ragged-batch padding) is identity."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(scale=4.0, size=n_rows)
        segment_ids = np.sort(rng.integers(0, n_segments, size=n_rows))
        with inference_mode():
            fused = segment_softmax_fused(scores, segment_ids, n_segments)
            padded = segment_softmax_fused(
                scores, segment_ids, n_segments + extra_segments
            )
            reference = segment_softmax(
                Tensor(scores), segment_ids, n_segments
            ).data
        assert np.array_equal(fused, reference)
        assert np.array_equal(fused, padded)
        # Each populated segment is a probability vector.
        sums = segment_sum_fused_sums(fused, segment_ids, n_segments)
        populated = np.bincount(segment_ids, minlength=n_segments) > 0
        assert np.allclose(sums[populated], 1.0, atol=1e-12)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_rows=st.integers(min_value=1, max_value=24),
        width=st.integers(min_value=1, max_value=6),
        n_segments=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_sum_matches_autograd(self, seed, n_rows, width, n_segments):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n_rows, width))
        segment_ids = rng.integers(0, n_segments, size=n_rows)
        with inference_mode():
            fused = segment_sum_fused(x, segment_ids, n_segments)
            reference = segment_sum(Tensor(x), segment_ids, n_segments).data
        assert np.array_equal(fused, reference)


def segment_sum_fused_sums(values, segment_ids, n_segments):
    with inference_mode():
        return segment_sum_fused(values, segment_ids, n_segments)


# ----------------------------------------------------------------------
# Full-head differential
# ----------------------------------------------------------------------


class TestFusedHeadDifferential:
    @given(samples=statement_batches(), seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_matches_autograd_on_random_batches(self, samples, seed):
        model = tiny_model(seed % 1000)
        encoder = BatchEncoder(model.vocab)
        batch = encoder.encode(samples)
        # Autograd reference: grad on forces the Tensor path.
        reference = model.forward(batch)
        assert reference.logits.requires_grad
        with inference_mode():
            fused = model.forward(batch)
            model.fused_head = False
            tensor_nograd = model.forward(batch)
        assert np.allclose(fused.logits.data, reference.logits.data, atol=TOL)
        assert np.allclose(
            fused.attention.data, reference.attention.data, atol=TOL
        )
        assert np.allclose(
            fused.updated_embeddings.data,
            reference.updated_embeddings.data,
            atol=TOL,
        )
        # Against the no-grad Tensor path the fused head is bit-identical
        # (same numpy calls in the same operand order).
        assert np.array_equal(fused.logits.data, tensor_nograd.logits.data)
        assert np.array_equal(
            fused.attention.data, tensor_nograd.attention.data
        )

    @given(samples=statement_batches())
    @settings(max_examples=20, deadline=None)
    def test_batch_composition_invariance(self, samples):
        """A statement's attention row doesn't depend on which ragged
        batch it lands in (within 1e-9) — the property that makes
        memoized rows reusable across batches.  Exact bit-identity is
        not guaranteed across batch *shapes*: BLAS blocks matmuls
        differently for different operand sizes, so the same row can
        round differently in the last ulp."""
        model = tiny_model(7)
        encoder = BatchEncoder(model.vocab)
        with inference_mode():
            combined = model.forward(encoder.encode(samples))
            rows = combined.attention_per_statement()
            for sample, row in zip(samples, rows):
                alone = model.forward(encoder.encode([sample]))
                assert np.allclose(
                    alone.attention_per_statement()[0], row, rtol=0, atol=TOL
                )

    def test_predict_uses_fused_head(self):
        model = tiny_model(3)
        encoder = BatchEncoder(model.vocab)
        samples = [
            Sample(make_context(0, 2), operand_values=(1, 0), label=0),
            Sample(make_context(1, 1), operand_values=(5,), label=1),
        ]
        batch = encoder.encode(samples)
        fused_pred = model.predict(batch)
        model.fused_head = False
        assert np.array_equal(fused_pred, model.predict(batch))


# ----------------------------------------------------------------------
# Grad gating
# ----------------------------------------------------------------------


class TestGradRefusal:
    def test_model_forward_fused_refuses_grad(self):
        model = tiny_model(1)
        encoder = BatchEncoder(model.vocab)
        batch = encoder.encode(
            [Sample(make_context(0, 1), operand_values=(1,), label=0)]
        )
        with pytest.raises(RuntimeError, match="inference_mode"):
            model_forward_fused(model, batch)
        # enable_grad nested inside inference_mode re-arms the refusal.
        with inference_mode():
            model_forward_fused(model, batch)
            with enable_grad():
                with pytest.raises(RuntimeError, match="inference_mode"):
                    model_forward_fused(model, batch)

    def test_kernels_refuse_grad(self):
        x = np.ones((3, 2))
        ids = np.array([0, 0, 1])
        with pytest.raises(RuntimeError, match="inference_mode"):
            segment_sum_fused(x, ids, 2)
        with pytest.raises(RuntimeError, match="inference_mode"):
            segment_softmax_fused(np.ones(3), ids, 2)
        model = tiny_model(2)
        with pytest.raises(RuntimeError, match="inference_mode"):
            mlp_forward_fused(model.predictor, np.ones((1, model.config.operand_dim)))
        with pytest.raises(RuntimeError, match="inference_mode"):
            linear_forward_fused(model.predictor.layers[0], np.ones((1, model.config.operand_dim)))

    def test_training_forward_builds_graph_despite_fused_head(self):
        """With grad on, the dispatch must ignore fused_head entirely."""
        model = tiny_model(4)
        encoder = BatchEncoder(model.vocab)
        batch = encoder.encode(
            [Sample(make_context(0, 2), operand_values=(1, 2), label=1)]
        )
        assert model.fused_head
        output = model.forward(batch)
        assert output.logits.requires_grad
        assert output.attention.requires_grad


# ----------------------------------------------------------------------
# Attention-row memo
# ----------------------------------------------------------------------


class TestAttentionRowMemo:
    def _sample(self, stmt_id=0, paths=None, values=(1, 0), label=0):
        context = make_context(stmt_id, len(values), paths=paths)
        return Sample(context=context, operand_values=values, label=label)

    def test_key_is_structure_plus_values_not_identity_or_label(self):
        memo = AttentionRowMemo()
        row = np.array([0.25, 0.75])
        paths = [[("And", "Rvalue")], [("Not", "Lvalue")]]
        memo.put(self._sample(0, paths=paths), row)
        # Fresh context object, different stmt_id, different label: same
        # structure + values -> served.
        assert memo.get(self._sample(9, paths=paths, label=1)) is row
        # Different operand values -> distinct entry.
        assert memo.get(self._sample(0, paths=paths, values=(0, 1))) is None
        # Different structure, same values -> distinct entry.
        other = [[("Or", "Rvalue")], [("Not", "Lvalue")]]
        assert memo.get(self._sample(0, paths=other)) is None

    def test_lru_bound_and_epoch_accounting(self):
        memo = AttentionRowMemo(max_entries=2)
        samples = [
            self._sample(i, paths=[[("And",) * (i + 1)]], values=(1,))
            for i in range(3)
        ]
        memo.put(samples[0], np.zeros(1))
        memo.put(samples[1], np.ones(1))
        assert memo.get(samples[0]) is not None  # touch: 0 becomes MRU
        memo.put(samples[2], np.full(1, 2.0))  # evicts 1, the LRU
        assert len(memo) == 2
        assert memo.evictions == 1
        assert memo.get(samples[1]) is None
        assert memo.cross_epoch_hits == 0
        memo.begin_epoch()
        assert memo.get(samples[0]) is not None
        assert memo.cross_epoch_hits == 1
        stats = memo.stats()
        assert stats["cross_epoch_hits"] == 1
        assert 0.0 < stats["cross_epoch_hit_rate"] <= 1.0
        memo.configure(enabled=False)
        assert len(memo) == 0 and not memo.enabled
        with pytest.raises(ValueError):
            memo.configure(enabled=True, max_entries=0)

    def test_memo_on_off_ranking_identity(self, trained_pipeline):
        buggy, failing, correct = planted_bug_case()
        localizer = trained_pipeline.localizer
        model = trained_pipeline.model
        with model_switches(model, fused=True, cache=True, memo=True):
            cold = localizer.localize(buggy, "y", failing, correct)
            warm = localizer.localize(buggy, "y", failing, correct)
            assert model.attention_memo.hits > 0
            assert model.attention_memo.cross_epoch_hits > 0
        with model_switches(model, fused=True, cache=True, memo=False):
            plain = localizer.localize(buggy, "y", failing, correct)
        for result in (cold, warm):
            assert result.ranking == plain.ranking
            assert set(result.heatmap.suspiciousness) == set(
                plain.heatmap.suspiciousness
            )
            for stmt_id, score in plain.heatmap.suspiciousness.items():
                assert abs(result.heatmap.suspiciousness[stmt_id] - score) <= TOL

    def test_memoized_maps_match_reference(self, trained_pipeline, arbiter):
        """Attention maps with a cold or warm memo equal the memo-off
        maps within 1e-9 (batch regrouping perturbs BLAS rounding, so
        bit-identity across the memo toggle is not guaranteed)."""
        from repro.analysis import extract_module_contexts
        from tests.test_fused_rnn import assert_maps_equal, design_traces

        model = trained_pipeline.model
        explainer = Explainer(model, trained_pipeline.encoder)
        contexts = extract_module_contexts(arbiter.statements())
        traces = design_traces(arbiter, n_traces=3)
        with model_switches(model, fused=True, cache=True, memo=True):
            cold = explainer.attention_map(contexts, traces)
            warm = explainer.attention_map(contexts, traces)
            assert model.attention_memo.hits > 0
        with model_switches(model, fused=True, cache=True, memo=False):
            reference = explainer.attention_map(contexts, traces)
        for amap in (cold, warm):
            assert_maps_equal(amap, reference)
        # Warm lookups serve the exact rows the cold pass stored.
        for stmt_id in cold.statements():
            assert np.array_equal(cold.weights[stmt_id], warm.weights[stmt_id])


# ----------------------------------------------------------------------
# Weight-epoch invalidation
# ----------------------------------------------------------------------


class TestWeightInvalidation:
    def _warm_memo(self, model):
        encoder = BatchEncoder(model.vocab)
        explainer = Explainer(model, encoder)
        # Multi-operand statements with distinct structures: their
        # attention rows are non-trivial (a single-operand row is always
        # [1.0] no matter the weights).
        samples = [
            Sample(
                make_context(
                    i, 2, paths=[[("And",) * (i + 1)], [("Not", "Lvalue")]]
                ),
                operand_values=(i % 3, (i + 1) % 3),
                label=0,
            )
            for i in range(4)
        ]
        rows = explainer._memoized_rows(samples, batch_size=8)
        assert len(model.attention_memo) > 0
        return samples, rows

    def test_load_state_dict_clears_memo(self):
        model = tiny_model(11)
        samples, rows = self._warm_memo(model)
        state = model.state_dict()
        state["attention_vector"] = state["attention_vector"] * 1.5
        model.load_state_dict(state)
        assert len(model.attention_memo) == 0
        assert len(model.context_cache) == 0
        # Recomputed rows reflect the new weights, not the stale memo.
        explainer = Explainer(model, BatchEncoder(model.vocab))
        fresh = explainer._memoized_rows(samples, batch_size=8)
        assert any(
            not np.array_equal(old, new) for old, new in zip(rows, fresh)
        )

    def test_trainer_train_clears_memo(self, tiny_samples):
        model = tiny_model(12)
        self._warm_memo(model)
        trainer = Trainer(model, BatchEncoder(model.vocab), model.config)
        trainer.train(tiny_samples[:24], epochs=1)
        assert len(model.attention_memo) == 0
