"""LSTM implementation (the paper's PathRNN backbone).

The cell follows the standard formulation with a fused gate projection:

.. math::

    i, f, g, o = \\mathrm{split}(x W_{ih} + h W_{hh} + b)

    c' = \\sigma(f) c + \\sigma(i) \\tanh(g), \\qquad
    h' = \\sigma(o) \\tanh(c')

:class:`LSTM` runs the cell over a padded batch of sequences with a step
mask, so ragged path batches can be processed fully vectorized.  The
forget-gate bias is initialized to 1, the usual trick for gradient flow
through time.

Two forward paths share the same weights:

* the **autograd path** (:class:`LSTMCell` applied per step) builds the
  full Tensor graph and is the training/reference arm;
* the **fused inference kernel** (:func:`lstm_forward_fused`) runs the
  whole ``[B, T, I]`` batch over raw ndarrays — one time-major
  input-projection GEMM for all timesteps, rows packed by length so each
  step fuses all four gates of exactly the still-live rows, states
  updated in place — and is selected automatically when autograd is off
  (inside :func:`repro.nn.inference_mode`).  It refuses to run with grad
  enabled, so it can never silently truncate a training graph.
"""

from __future__ import annotations

import numpy as np

from .layers import Module, Parameter, _glorot
from .tensor import Tensor, is_grad_enabled


def _sigmoid_inplace(a: np.ndarray) -> np.ndarray:
    """In-place logistic sigmoid, with the same clipping as Tensor.sigmoid."""
    np.clip(a, -60.0, 60.0, out=a)
    np.negative(a, out=a)
    np.exp(a, out=a)
    a += 1.0
    np.reciprocal(a, out=a)
    return a


def lstm_forward_fused(
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    x: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """No-grad fused LSTM forward over raw arrays.

    Computes exactly what the masked :class:`LSTM` autograd loop computes
    — the hidden state after each sequence's last valid step — without
    building any Tensor graph: rows are packed by descending sequence
    length, the input projection of every live timestep is one time-major
    GEMM, and each step fuses all four gates of the still-live row block
    into a single ``[B_t, 4H]`` projection, updating the state buffers in
    place (finished rows are never touched, which is the 0/1 mask update
    minus the multiplies).

    Args:
        w_ih / w_hh / bias: The cell parameters (``[I, 4H]``, ``[H, 4H]``,
            ``[4H]``).
        x: ``[B, T, I]`` padded input sequences.
        mask: ``[B, T]`` float/bool array, 1 for valid steps (sequences
            left-aligned: valid steps first, padding after).

    Returns:
        ``[B, H]`` final hidden states (a fresh float64 array).

    Raises:
        RuntimeError: If autograd is enabled.  The kernel produces plain
            arrays, so running it inside a recorded forward pass would
            silently detach the graph; wrap calls in
            :func:`repro.nn.inference_mode`.
        ValueError: If the mask has an interior gap (not left-aligned);
            the packed representation cannot express resuming a frozen
            sequence, so the misuse fails loudly instead of drifting from
            the autograd arm.
    """
    if is_grad_enabled():
        raise RuntimeError(
            "lstm_forward_fused requires autograd to be disabled; wrap the "
            "call in repro.nn.inference_mode() (training must use the "
            "LSTMCell autograd path)"
        )
    x = np.asarray(x, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    batch, _, input_size = x.shape
    hidden = w_hh.shape[0]

    valid = mask != 0.0
    if np.any(valid[:, 1:] & ~valid[:, :-1]):
        raise ValueError(
            "mask must be left-aligned (valid steps first, padding after); "
            "the packed kernel cannot represent interior gaps"
        )
    h = np.zeros((batch, hidden))
    lengths = valid.sum(axis=1)
    max_len = int(lengths.max()) if batch else 0
    if max_len == 0:
        return h

    # Pack: rows sorted by descending length, so at step t exactly the
    # first `active[t]` rows are live and the mask vanishes from the loop
    # (a live row takes the new state outright; a finished row is simply
    # never touched again — the same arithmetic as the autograd arm's
    # exact 0/1 mask update, minus the multiplies).
    order = np.argsort(-lengths, kind="stable")
    active = np.searchsorted(-lengths[order], -np.arange(1, max_len + 1), "right")

    # Input projections of the live rows only — packing makes them a
    # prefix of every time-major block — in one GEMM; bias folded in once.
    x_packed = x[order, :max_len].transpose(1, 0, 2)  # [T, B, I]
    live = np.arange(batch)[None, :] < active[:, None]
    projected = x_packed[live] @ w_ih  # [sum(active), 4H]
    projected += bias
    offsets = np.concatenate(([0], np.cumsum(active)))

    c = np.zeros((batch, hidden))
    for t in range(max_len):
        n = int(active[t])
        gates = projected[offsets[t] : offsets[t + 1]]
        gates += h[:n] @ w_hh
        i_gate = _sigmoid_inplace(gates[:, 0 * hidden : 1 * hidden])
        f_gate = _sigmoid_inplace(gates[:, 1 * hidden : 2 * hidden])
        g_gate = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o_gate = _sigmoid_inplace(gates[:, 3 * hidden : 4 * hidden])
        c_live = c[:n]
        c_live *= f_gate
        i_gate *= g_gate
        c_live += i_gate
        np.tanh(c_live, out=h[:n])
        h[:n] *= o_gate

    # Unpack to the caller's row order.
    out = np.empty_like(h)
    out[order] = h
    return out


class LSTMCell(Module):
    """A single LSTM step over a batch."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(_glorot(input_size, 4 * hidden_size, rng), name="w_ih")
        self.w_hh = Parameter(_glorot(hidden_size, 4 * hidden_size, rng), name="w_hh")
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step: inputs ``[B, I]``, state ``[B, H]`` -> new state."""
        gates = x @ self.w_ih + h @ self.w_hh + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f_gate * c + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new


class LSTM(Module):
    """Masked LSTM over padded sequences, returning the final hidden state.

    Sequences must be left-aligned: valid steps first, padding after.  The
    mask freezes the state on padded steps, so the returned hidden state is
    the one after each sequence's last valid step.

    When autograd is off (inside :func:`repro.nn.inference_mode`) and
    ``fused_inference`` is set (the default), :meth:`forward` dispatches to
    the fused no-graph kernel; with grad enabled it always runs the
    :class:`LSTMCell` autograd loop, so training is never affected.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        fused_inference: bool = True,
    ):
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size
        #: Allow the fused kernel under inference_mode (benchmarks flip
        #: this off to time the graph-free-but-unfused baseline).
        self.fused_inference = fused_inference

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """Run the LSTM.

        Args:
            x: ``[B, T, I]`` padded input sequences.
            mask: ``[B, T]`` float/bool array, 1 for valid steps.

        Returns:
            ``[B, H]`` final hidden states.
        """
        if self.fused_inference and not is_grad_enabled():
            return Tensor(self.forward_fused(x, mask))
        batch, steps, _ = x.shape
        mask = np.asarray(mask, dtype=np.float64)
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            x_t = x[:, t, :]
            h_new, c_new = self.cell(x_t, h, c)
            step_mask = Tensor(mask[:, t : t + 1])
            h = step_mask * h_new + (1.0 - step_mask) * h
            c = step_mask * c_new + (1.0 - step_mask) * c
        return h

    def forward_fused(self, x: Tensor | np.ndarray, mask: np.ndarray) -> np.ndarray:
        """The fused no-grad kernel over this LSTM's weights.

        See :func:`lstm_forward_fused`; raises ``RuntimeError`` when
        autograd is enabled.
        """
        data = x.data if isinstance(x, Tensor) else x
        cell = self.cell
        return lstm_forward_fused(
            cell.w_ih.data, cell.w_hh.data, cell.bias.data, data, mask
        )
