module ring_counter_test;
    reg clk, rst;
    wire [3:0] q;
    ring_counter dut (.clk(clk), .rst(rst), .q(q));
    always #5 clk = ~clk;
    initial begin
        clk = 0; rst = 1;
        #12 rst = 0;
        #300 $finish;
    end
endmodule
