module testbench;
    reg clk, rst_n;
    wire tick;
    freq_div dut (.clk(clk), .rst_n(rst_n), .tick(tick));
    always #5 clk = ~clk;
    initial begin
        clk = 0; rst_n = 0;
        #12 rst_n = 1;
        #600 $finish;
    end
endmodule
